"""Surrogate sweeps: a million-point exploration for the cost of 1%.

The exact engine pays one estimator pass per point, so a million-point
InfoPad sweep costs minutes; the fit-predict-verify surrogate
(``repro sweep --surrogate``) exact-evaluates a seeded 1% sample, fits
per-objective least-squares models, predicts the rest as vectorized
matrix products, and re-verifies the predicted Pareto frontier with the
real estimator.

Three deterministic gates over a 1,000,809-point space
(VDD2 x VDD1 x bit-width, with a derived access-time objective):

* the surrogate run is at least **10x** faster than the exact engine's
  extrapolated cost, with a fitted holdout error bound within the 10%
  ``--max-error`` budget;
* every verified frontier row is **bit-identical** to a fresh exact
  estimator evaluation;
* a job killed mid-training and resumed from its checkpoint exports
  the byte-identical JSON an uninterrupted run produces.

Results land in ``bench_surrogate.json`` (the CI artifact).
"""

import json
import time
from pathlib import Path

import pytest
from conftest import banner

from repro.designs.infopad import build_infopad
from repro.explore import (
    Axis,
    DerivedObjective,
    JobStore,
    ParameterSpace,
    export_json,
    parse_axis_spec,
)
from repro.explore.batcheval import BatchEvaluator
from repro.explore.engine import run_job
from repro.explore.jobs import SweepJob
from repro.surrogate import surrogate_report

ARTIFACT = Path(__file__).with_name("bench_surrogate.json")

BITS_TARGET = "custom_hardware.luminance_chip.read_bank.bits"
#: 1101 supplies x 101 memory rails x 9 widths = 1,000,809 points
AXIS_SPECS = ("VDD2=1.1:3.3:0.002", "VDD1=0.9:1.8:0.009")
BITS_VALUES = tuple(float(b) for b in range(8, 17))

#: the paper's access-time story as a derived objective: higher VDD2
#: closes the bit lines faster (InfoPad has no timing models, so the
#: trade-off axis comes from the classic alpha-power delay form)
ACCESS_TIME = DerivedObjective(
    "access_time", "2e-8 * (VDD2 / 1.5) / ((VDD2 - 0.7) ^ 1.3)"
)

SURROGATE = {
    "train_frac": 0.01,
    "train_seed": 1996,
    "verify_top": 64,
    "max_error": 0.10,  # the 10% bound is enforced, not just reported
}

EXACT_SAMPLE = 2000  # points timed to extrapolate the exact engine


def make_space() -> ParameterSpace:
    return ParameterSpace(
        [
            parse_axis_spec(AXIS_SPECS[0]),
            parse_axis_spec(AXIS_SPECS[1]),
            Axis("bits", BITS_VALUES, target=BITS_TARGET),
        ],
        point_cap=2_000_000,
        lazy=True,
    )


def make_job(job_id="job-0000", store=None) -> SweepJob:
    if store is not None:
        return store.create(
            build_infopad(), make_space(), objectives=("power",),
            derived=(ACCESS_TIME,), chunk_size=2048,
            surrogate=SURROGATE,
        )
    return SweepJob(
        job_id, "bench", build_infopad(), make_space(),
        objectives=("power",), derived=(ACCESS_TIME,),
        chunk_size=2048, surrogate=SURROGATE,
    )


def _record(update: dict) -> None:
    payload = {}
    if ARTIFACT.exists():
        payload = json.loads(ARTIFACT.read_text())
    payload.update(update)
    ARTIFACT.write_text(json.dumps(payload, indent=1, sort_keys=True))


@pytest.fixture(scope="module")
def full_run():
    """One uninterrupted surrogate run over the full space, timed."""
    job = make_job()
    started = time.perf_counter()
    run_job(job)
    seconds = time.perf_counter() - started
    assert job.state == "done"
    return job, seconds


def test_ten_x_speedup_within_error_budget(full_run):
    job, surrogate_s = full_run
    report = surrogate_report(job)

    # exact-engine baseline: time a spread of real evaluations and
    # extrapolate — actually running a million would take minutes,
    # which is the point
    space = job.space
    stride = len(space) // EXACT_SAMPLE
    evaluator = BatchEvaluator(build_infopad(), ("power",))
    started = time.perf_counter()
    for index in range(0, stride * EXACT_SAMPLE, stride):
        evaluator.evaluate(space.point(index)["overrides"])
    sample_s = time.perf_counter() - started
    per_point_s = sample_s / EXACT_SAMPLE
    exact_extrapolated_s = per_point_s * len(space)
    speedup = exact_extrapolated_s / surrogate_s

    banner(
        "Surrogate engine — 1M-point InfoPad sweep",
        "exact-train 1%, predict the rest, verify the frontier",
    )
    print(f"{len(space)} points: exact engine ~{exact_extrapolated_s:.1f} s "
          f"(extrapolated from {EXACT_SAMPLE} points at "
          f"{per_point_s * 1e6:.0f} us), surrogate {surrogate_s:.1f} s "
          f"-> {speedup:.1f}x")
    print(f"trained {report.train_points}, predicted "
          f"{report.predicted_points}, verified {report.verified_points} "
          f"(front {report.front_size})")
    print(f"error bound {report.error_bound:.3%} (holdout) vs budget "
          f"{SURROGATE['max_error']:.0%}; observed "
          f"{report.observed_max_rel:.3%} on verified rows")
    _record(
        {
            "points": len(space),
            "train_points": report.train_points,
            "verified_points": report.verified_points,
            "front_size": report.front_size,
            "surrogate_s": surrogate_s,
            "exact_per_point_s": per_point_s,
            "exact_extrapolated_s": exact_extrapolated_s,
            "speedup": speedup,
            "error_bound": report.error_bound,
            "observed_max_rel": report.observed_max_rel,
        }
    )
    assert report.error_bound <= SURROGATE["max_error"]
    assert speedup >= 10.0, f"only {speedup:.1f}x over the exact engine"


def test_verified_frontier_bit_identical_to_exact(full_run):
    job, _seconds = full_run
    rows = job.result_rows()
    front = {
        row["index"]: row for row in rows
        if row["source"] == "exact" and "predicted" in row
    }
    assert front, "no verified predicted rows to check"
    evaluator = BatchEvaluator(build_infopad(), ("power",))
    mismatches = 0
    for row in front.values():
        exact = evaluator.evaluate(row["overrides"])
        if row["objectives"]["power"] != exact["power"]:
            mismatches += 1
    banner(
        "Surrogate engine — verified rows vs the exact estimator",
        "a verified row is a measurement, not a prediction",
    )
    print(f"{len(front)} verified rows re-evaluated: "
          f"{mismatches} mismatches")
    _record(
        {
            "reverified_rows": len(front),
            "verified_bit_identical": mismatches == 0,
        }
    )
    assert mismatches == 0


def test_kill_and_resume_is_byte_identical(full_run, tmp_path):
    job, _seconds = full_run
    expected = export_json(
        job.result_rows(), job.space.axis_names, job.objective_names
    )

    store = JobStore(tmp_path)
    interrupted = make_job(store=store)
    checkpoints = {"n": 0}
    original = interrupted.record_phase_chunk

    def counting(phase, ordinal, indices, rows, seconds):
        original(phase, ordinal, indices, rows, seconds)
        checkpoints["n"] += 1

    interrupted.record_phase_chunk = counting
    run_job(interrupted, should_stop=lambda: checkpoints["n"] >= 2)
    interrupted.record_phase_chunk = original
    assert interrupted.state == "cancelled"
    assert 0 < interrupted.done_points < interrupted.total_points

    revived = JobStore(tmp_path).job(interrupted.job_id)  # fresh process
    run_job(revived)
    assert revived.state == "done"
    resumed = export_json(
        revived.result_rows(), revived.space.axis_names,
        revived.objective_names,
    )

    banner(
        "Surrogate engine — checkpoint / resume equivalence",
        "kill mid-training; the resumed export must not wobble",
    )
    identical = resumed == expected
    print(f"killed after {interrupted.done_points} exact points: resumed "
          f"export {'==' if identical else '!='} uninterrupted "
          f"({len(resumed)} bytes)")
    _record({"resume_byte_identical": identical})
    assert identical
