"""E6 — EQ 12 / Ong & Yan: software energy varies by orders of magnitude.

"Ong and Yan have used this methodology on a fictitious processor to
determine that there can be orders of magnitude variance in power
consumption for different sorting algorithms."

The bench profiles six sorting algorithms on the fictitious processor
substrate (instrumented route; bubble sort cross-checked against the
cycle-accurate VM route) and evaluates EQ 12 energies, with and without
the cache-miss correction the paper says naive estimates omit.
"""

import pytest

from conftest import banner

from repro.models.processor import (
    DEFAULT_ISA,
    MemorySystemCorrection,
    algorithm_energy,
    algorithm_power,
)
from repro.sim.isa import BUBBLE_SORT, run_sort_program
from repro.sim.sorting import profile_sort, random_data

ALGORITHMS = ("bubble", "selection", "insertion", "heap", "merge", "quick")
N = 1024
CLOCK = 25e6


def test_eq12_sorting_energy_table(benchmark):
    data = random_data(N, seed=13)

    def study():
        rows = []
        for algorithm in ALGORITHMS:
            _out, profile = profile_sort(algorithm, data)
            rows.append(
                (
                    algorithm,
                    profile.total_instructions,
                    algorithm_energy(profile),
                    algorithm_power(profile, CLOCK),
                )
            )
        rows.sort(key=lambda row: row[2])
        return rows

    rows = benchmark(study)

    banner(
        "E6 / EQ 12 — sorting-algorithm energy (Ong & Yan)",
        "orders of magnitude variance across algorithms",
    )
    best = rows[0][2]
    print(f"{'algorithm':>10} {'instrs':>10} {'energy':>12} {'rel':>8} {'power':>8}")
    for algorithm, instructions, energy, power in rows:
        print(
            f"{algorithm:>10} {instructions:>10} {energy * 1e6:>10.1f}uJ "
            f"{energy / best:>7.1f}x {power:>7.3f}W"
        )

    energies = {algorithm: energy for algorithm, _i, energy, _p in rows}
    # the paper's claim: orders of magnitude spread at realistic n
    assert max(energies.values()) / min(energies.values()) > 30
    # quadratic sorts lose; n-log-n sorts cluster
    assert energies["bubble"] > 20 * energies["quick"]
    assert max(energies[a] for a in ("quick", "merge", "heap")) < 6 * min(
        energies[a] for a in ("quick", "merge", "heap")
    )


def test_eq12_vm_cross_check(benchmark):
    """The coded-algorithm + profiler route (SPIX/Pixie analogue)."""
    data = random_data(96, seed=13)

    def vm_run():
        _out, profile = run_sort_program(BUBBLE_SORT, data, "bubble_vm")
        return profile

    vm_profile = benchmark(vm_run)
    _out, traced_profile = profile_sort("bubble", data)
    e_vm = algorithm_energy(vm_profile)
    e_tr = algorithm_energy(traced_profile)
    print(
        f"\nbubble n=96: VM {e_vm * 1e6:.2f} uJ vs instrumented "
        f"{e_tr * 1e6:.2f} uJ ({max(e_vm, e_tr) / min(e_vm, e_tr):.2f}x)"
    )
    assert max(e_vm, e_tr) / min(e_vm, e_tr) < 2.5


def test_eq12_cache_correction(benchmark):
    """Naive EQ 12 underestimates; the miss correction raises energy."""
    data = random_data(N, seed=13)
    _out, profile = profile_sort("merge", data)
    correction = MemorySystemCorrection(miss_rate=0.05)

    def corrected_energy():
        naive = algorithm_energy(profile)
        extra, _cycles = correction.apply(profile)
        return naive, naive + extra

    naive, corrected = benchmark(corrected_energy)
    print(
        f"\nmerge n={N}: naive {naive * 1e6:.1f} uJ, with 5% miss rate "
        f"{corrected * 1e6:.1f} uJ (+{100 * (corrected / naive - 1):.1f}%)"
    )
    assert corrected > naive
