"""Benchmark trajectory: normalize every bench artifact, gate regressions.

Each bench writes its own JSON artifact in its own shape — the
pytest-benchmark harness emits ``{"benchmarks": [{name, stats}]}``,
the deterministic benches (``bench_registry.json``,
``bench_fleet.json``, ``bench_history.json``) write flat fact dicts.  This module flattens all
of them into one schema so the repo carries a single machine-readable
performance history:

    {"bench": "bench_observability", "metric": "...", "value": 1.2e-4,
     "unit": "s", "commit": "abc1234"}

``python trajectory.py --write`` rewrites ``BENCH_TRAJECTORY.json``
(the committed baseline); ``repro bench-report`` prints the table and
exits non-zero when any *time* metric (unit ``s``) regressed more than
the threshold against that baseline.  Non-time metrics (counts, ratios,
booleans) are reported for the diff but not gated — their direction of
"better" is bench-specific.

Stdlib only; runnable both as a script and via ``importlib`` from the
CLI (``repro bench-report``).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional

BASELINE_NAME = "BENCH_TRAJECTORY.json"

#: artifacts that are not bench outputs (profiles, the baseline itself)
_SKIP_FILES = {BASELINE_NAME, "profile_evaluate_power.json"}


def _current_commit(bench_dir: Path) -> str:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=bench_dir,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if completed.returncode == 0:
            return completed.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _rows_from_pytest_benchmark(
    bench: str, payload: Dict[str, object], commit: str
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for entry in payload.get("benchmarks", []):  # type: ignore[union-attr]
        if not isinstance(entry, dict):
            continue
        stats = entry.get("stats")
        name = entry.get("name")
        if not isinstance(stats, dict) or not isinstance(name, str):
            continue
        for stat in ("mean", "stddev"):
            value = stats.get(stat)
            if isinstance(value, (int, float)):
                rows.append({
                    "bench": bench,
                    "metric": f"{name}.{stat}",
                    "value": float(value),
                    "unit": "s",
                    "commit": commit,
                })
    return rows


def _rows_from_flat_dict(
    bench: str, payload: Dict[str, object], commit: str, prefix: str = ""
) -> List[Dict[str, object]]:
    """Numeric scalars (recursively) become metrics; unit inferred from
    the key name (``*_s``/``*_seconds`` -> seconds, ``*_ms`` kept as-is
    with unit ``ms``)."""
    rows: List[Dict[str, object]] = []
    for key in sorted(payload):
        value = payload[key]
        metric = f"{prefix}{key}"
        if isinstance(value, bool):
            rows.append({
                "bench": bench, "metric": metric,
                "value": 1.0 if value else 0.0, "unit": "", "commit": commit,
            })
        elif isinstance(value, (int, float)):
            if key.endswith(("_s", "_seconds")):
                unit = "s"
            elif key.endswith("_ms"):
                unit = "ms"
            else:
                unit = ""
            rows.append({
                "bench": bench, "metric": metric,
                "value": float(value), "unit": unit, "commit": commit,
            })
        elif isinstance(value, dict):
            rows.extend(
                _rows_from_flat_dict(bench, value, commit, f"{metric}.")
            )
    return rows


def collect(bench_dir: Path, commit: Optional[str] = None) -> List[Dict[str, object]]:
    """Normalize every ``bench_*.json`` under ``bench_dir``."""
    commit = commit or _current_commit(bench_dir)
    rows: List[Dict[str, object]] = []
    for path in sorted(bench_dir.glob("bench_*.json")):
        if path.name in _SKIP_FILES:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict):
            continue
        bench = path.stem
        if isinstance(payload.get("benchmarks"), list):
            rows.extend(_rows_from_pytest_benchmark(bench, payload, commit))
        else:
            rows.extend(_rows_from_flat_dict(bench, payload, commit))
    rows.sort(key=lambda row: (row["bench"], row["metric"]))
    return rows


def load_baseline(path: Path) -> List[Dict[str, object]]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    if isinstance(payload, dict):
        payload = payload.get("rows", [])
    return [row for row in payload if isinstance(row, dict)]


def compare(
    current: List[Dict[str, object]],
    baseline: List[Dict[str, object]],
    threshold: float = 0.20,
) -> List[Dict[str, object]]:
    """Time metrics (unit ``s``/``ms``) that got slower than
    ``baseline * (1 + threshold)``.  ``stddev`` rows are excluded —
    jitter of the jitter is not a regression signal."""
    baseline_by_key = {
        (row["bench"], row["metric"]): row for row in baseline
    }
    regressions: List[Dict[str, object]] = []
    for row in current:
        if row["unit"] not in ("s", "ms"):
            continue
        if str(row["metric"]).endswith(".stddev"):
            continue
        before = baseline_by_key.get((row["bench"], row["metric"]))
        if before is None or before.get("unit") != row["unit"]:
            continue
        old = float(before["value"])  # type: ignore[arg-type]
        new = float(row["value"])  # type: ignore[arg-type]
        if old > 0 and new > old * (1.0 + threshold):
            regressions.append({
                **row,
                "baseline": old,
                "ratio": new / old,
            })
    return regressions


def write_trajectory(
    bench_dir: Path, out_path: Path, commit: Optional[str] = None
) -> List[Dict[str, object]]:
    rows = collect(bench_dir, commit)
    out_path.write_text(
        json.dumps({"rows": rows}, indent=1, sort_keys=True) + "\n"
    )
    return rows


def report(
    bench_dir: Path,
    baseline_path: Path,
    threshold: float = 0.20,
    write: bool = False,
) -> int:
    """Print the trajectory table; exit 1 on a gated regression."""
    rows = collect(bench_dir)
    if not rows:
        print(f"no bench_*.json artifacts under {bench_dir} — run the "
              "benches first (see EXPERIMENTS.md)")
        return 1
    if write:
        write_trajectory(bench_dir, baseline_path)
        print(f"wrote {len(rows)} rows to {baseline_path}")
        return 0

    baseline = load_baseline(baseline_path)
    baseline_by_key = {
        (row["bench"], row["metric"]): row for row in baseline
    }
    print(f"{'bench':32} {'metric':44} {'value':>12} {'unit':4} "
          f"{'vs baseline':>11}")
    print("-" * 108)
    for row in rows:
        before = baseline_by_key.get((row["bench"], row["metric"]))
        if before and float(before["value"]) > 0:  # type: ignore[arg-type]
            delta = float(row["value"]) / float(before["value"]) - 1.0  # type: ignore[arg-type]
            versus = f"{delta:+.1%}"
        elif before:
            versus = "·"
        else:
            versus = "new"
        print(f"{row['bench']:32} {row['metric']:44} "
              f"{row['value']:>12.6g} {row['unit']:4} {versus:>11}")

    if not baseline:
        print(f"\nno baseline at {baseline_path} — informational run "
              "(write one with --write)")
        return 0
    regressions = compare(rows, baseline, threshold)
    if regressions:
        print(f"\nREGRESSIONS (> {threshold:.0%} slower than baseline):")
        for row in regressions:
            print(f"  {row['bench']}.{row['metric']}: "
                  f"{row['baseline']:.6g} -> {row['value']:.6g} {row['unit']} "
                  f"({row['ratio']:.2f}x)")
        return 1
    print(f"\nno time regressions > {threshold:.0%} against "
          f"{len(baseline)} baseline rows")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench-dir", default=str(Path(__file__).parent))
    parser.add_argument("--baseline", default=None,
                        help=f"baseline path (default BENCH_DIR/{BASELINE_NAME})")
    parser.add_argument("--threshold", type=float, default=0.20)
    parser.add_argument("--write", action="store_true",
                        help="rewrite the baseline from current artifacts")
    args = parser.parse_args(argv)
    bench_dir = Path(args.bench_dir)
    baseline = Path(args.baseline) if args.baseline else bench_dir / BASELINE_NAME
    return report(bench_dir, baseline, threshold=args.threshold,
                  write=args.write)


if __name__ == "__main__":
    raise SystemExit(main())
