"""L1 — multi-user soak: determinism, linearizability, cache payoff.

The paper's whole pitch is a *shared* WWW tool — "it can be accessed by
any machine on the web" — which is only credible if many designers can
hammer one server without corrupting each other's state.  This bench:

* proves the workload generator is deterministic (same seed ⇒
  byte-identical script, and two independent full runs of that script
  end in identical oracle state);
* soaks the application with 8 driver threads for ≥2k operations and
  asserts zero server errors and a serial-replay-equivalent end state
  (no lost updates, no torn session files);
* measures the memoized evaluation cache: repeated evaluation of an
  unchanged InfoPad design must be ≥5x faster than cold evaluation,
  and a mutation must invalidate (same answer as a fresh evaluate).

Deterministic end to end: one seed drives everything.
"""

import time
from pathlib import Path

import pytest

from conftest import banner

from repro.core.estimator import evaluate_power
from repro.core.evalcache import EvaluationCache
from repro.designs.infopad import build_infopad
from repro.loadgen import (
    InProcessTarget,
    generate_workload,
    replay_serial,
    run_script,
    summarize_latencies,
    verify,
)
from repro.loadgen.oracle import capture_state
from repro.web.app import Application

SEED = 1996
SOAK_USERS = 8
SOAK_OPS = 2000
SOAK_THREADS = 8


def test_bench_workload_determinism(tmp_path: Path):
    banner(
        "L1a — seeded workload determinism",
        "shared WWW access must be reproducible to be testable",
    )
    first = generate_workload(SEED, users=4, ops=120)
    second = generate_workload(SEED, users=4, ops=120)
    identical = first.to_json() == second.to_json()
    print(f"script bytes: {len(first.to_json())}  identical: {identical}")
    assert identical, "same seed must produce a byte-identical script"

    states = []
    for run in ("a", "b"):
        application = Application(tmp_path / run)
        result = run_script(first, InProcessTarget(application), threads=4)
        assert not result.server_errors, result.server_errors[:3]
        states.append(capture_state(application, first))
    same_end_state = states[0] == states[1]
    print(f"independent concurrent runs end in identical state: "
          f"{same_end_state}")
    assert same_end_state, "same script must reproduce the same end state"


def test_bench_soak_8_threads(tmp_path: Path):
    banner(
        "L1b — 8-thread soak with serial-replay oracle",
        '"since PowerPlay is local to one server, it can be accessed '
        'by any machine on the web"',
    )
    script = generate_workload(SEED, users=SOAK_USERS, ops=SOAK_OPS)
    application = Application(tmp_path / "soak")
    result = run_script(
        script, InProcessTarget(application), threads=SOAK_THREADS
    )
    latency = summarize_latencies(result.latencies)
    print(
        f"{len(result.results)} ops on {result.threads} threads in "
        f"{result.wall_seconds:.2f} s -> {result.throughput:.0f} ops/s"
    )
    print(
        f"latency: p50={latency['p50'] * 1e3:.2f} ms  "
        f"p95={latency['p95'] * 1e3:.2f} ms  "
        f"p99={latency['p99'] * 1e3:.2f} ms"
    )
    cache = application.eval_cache.stats()
    lookups = cache["hits"] + cache["misses"]
    print(
        f"eval cache: hits={cache['hits']} misses={cache['misses']} "
        f"hit_rate={cache['hits'] / lookups:.1%}"
    )
    assert len(result.results) == SOAK_OPS
    assert not result.server_errors, (
        f"{len(result.server_errors)} server errors, first: "
        f"{result.server_errors[:3]}"
    )

    serial_app, serial_result = replay_serial(script, tmp_path / "serial")
    assert not serial_result.server_errors
    report = verify(script, application, serial_app)
    print(report.summary())
    for difference in report.differences[:10]:
        print(f"  {difference}")
    assert report.matches, "concurrent end state diverged from serial replay"


def test_bench_eval_cache_speedup():
    banner(
        "L1c — memoized evaluation cache",
        "instant feedback on the design spreadsheet",
    )
    design = build_infopad()
    cache = EvaluationCache()

    cold_start = time.perf_counter()
    cold_report = cache.power(design)
    cold = time.perf_counter() - cold_start

    repeats = 50
    warm_start = time.perf_counter()
    for _ in range(repeats):
        warm_report = cache.power(design)
    warm = (time.perf_counter() - warm_start) / repeats

    speedup = cold / warm if warm > 0 else float("inf")
    print(
        f"cold evaluate: {cold * 1e3:.3f} ms   "
        f"cached: {warm * 1e3:.3f} ms   speedup: {speedup:.1f}x"
    )
    assert warm_report.power == cold_report.power
    assert speedup >= 5.0, (
        f"cached evaluation only {speedup:.1f}x faster (need >= 5x)"
    )

    # invalidation is correctness, not best-effort: mutate and re-ask
    design.scope.set("VDD2", 1.1)
    invalidated = cache.power(design)
    fresh = evaluate_power(design)
    print(
        f"after VDD2=1.1 mutation: cached={invalidated.power:.6e} W  "
        f"fresh={fresh.power:.6e} W"
    )
    assert invalidated.power == pytest.approx(fresh.power)
    assert invalidated.power != pytest.approx(cold_report.power)
