"""E8 — the workflow claim: browser-only, under three minutes.

"The whole process, including the selection of the library elements and
the composition of the architecture, was executed through a standard WWW
browser, Netscape, in less than three minutes.  No other tool interfaces
are needed."

The bench scripts the complete session against a live HTTP server —
identify, browse, parameterize each Figure 2 block on its input form,
save into a design, PLAY — and times it.  Scripted, it completes in
well under a second; the three-minute budget was for a human.
"""

import time

import pytest

from conftest import banner

from repro.web.client import Browser
from repro.web.server import PowerPlayServer

ROWS = [
    ("sram", "read_bank", {"words": 2048, "bits": 8, "f": "122.88k"}),
    ("sram", "write_bank", {"words": 2048, "bits": 8, "f": "61.44k"}),
    ("sram", "lut", {"words": 4096, "bits": 6, "f": "1.966M"}),
    ("register", "output_register", {"bits": 6, "f": "1.966M"}),
]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    with PowerPlayServer(
        tmp_path_factory.mktemp("bench_web"), server_name="berkeley"
    ) as live:
        yield live


def run_session(base_url: str, user: str) -> float:
    browser = Browser(base_url)
    started = time.perf_counter()
    page = browser.login(user)
    assert "Main Menu" in page.title
    browser.get(page.link_by_text("Library"))
    browser.new_design(user, "vq_chip")
    for cell, row, parameters in ROWS:
        parameters = dict(parameters, VDD=1.5)
        computed = browser.compute_cell(user, cell, parameters)
        assert computed.contains("Result")
        browser.save_cell_to_design(user, cell, "vq_chip", row, parameters)
    sheet = browser.open_design(user, "vq_chip")
    assert all(sheet.contains(row) for _c, row, _p in ROWS)
    played = browser.play(user, "vq_chip")
    assert played.error is None
    return time.perf_counter() - started


def test_three_minute_workflow(benchmark, server):
    counter = {"n": 0}

    def session():
        counter["n"] += 1
        return run_session(server.base_url, f"user{counter['n']}")

    elapsed = benchmark(session)

    banner(
        "E8 — browser-only workflow timing",
        "'executed through a standard WWW browser in less than three "
        "minutes; no other tool interfaces are needed'",
    )
    print(f"scripted full session: {elapsed:.3f} s "
          "(12+ HTTP round trips: login, browse, 4x form+save, sheet, PLAY)")
    assert elapsed < 180.0


def test_instant_feedback_loop(benchmark, server):
    """'The feedback is virtually instantaneous, so the user may cycle
    through many options' — one form POST per option."""
    browser = Browser(server.base_url)
    browser.login("cycler")
    options = [(bits, bits) for bits in (4, 8, 12, 16, 24, 32)]

    def cycle():
        results = []
        for bits_a, bits_b in options:
            page = browser.compute_cell(
                "cycler", "multiplier",
                {"bitwidthA": bits_a, "bitwidthB": bits_b,
                 "VDD": 1.5, "f": "2M"},
            )
            results.append(page.contains("Result"))
        return results

    results = benchmark(cycle)
    assert all(results)
    print(f"\ncycled through {len(options)} multiplier options over HTTP")
