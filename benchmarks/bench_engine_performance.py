"""Engine performance — the substrate behind "virtually instantaneous".

The paper's usability claims rest on the spreadsheet being fast: form
feedback is immediate and PLAY on a whole system is interactive.  These
benches pin that down on synthetic designs much bigger than the paper's
(hundreds of rows, thousands of cells) and check that the incremental
recalculation path does asymptotically less work than a full pass.
"""

import pytest

from conftest import banner

from repro.core.design import Design
from repro.core.estimator import evaluate_power
from repro.core.expressions import compile_expression as E
from repro.core.model import CapacitiveTerm, TemplatePowerModel
from repro.core.parameters import Parameter
from repro.core.sheet import Sheet
from repro.core.sheetbridge import DesignSheet

ADDER = TemplatePowerModel(
    "adder",
    capacitive=[CapacitiveTerm("bits", E("bitwidth * 68f"))],
    parameters=(Parameter("bitwidth", 16),),
)


def big_design(rows: int = 200) -> Design:
    design = Design("big")
    design.scope.set("VDD", 1.5)
    design.scope.set("f", 2e6)
    for index in range(rows):
        design.add(f"row{index:03d}", ADDER, params={"bitwidth": 8 + index % 24})
    return design


def test_play_on_200_rows(benchmark):
    design = big_design(200)
    report = benchmark(evaluate_power, design)

    banner(
        "Engine — PLAY on a 200-row design",
        "'when the Play button is hit, the entire design is passed ...'",
    )
    stats = benchmark.stats.stats if benchmark.stats else None
    print(f"200-row hierarchical evaluation; total "
          f"{report.power * 1e3:.2f} mW")
    assert report.power > 0
    assert len(report.children) == 200


def test_deep_hierarchy(benchmark):
    """'There is no fundamental limit to the levels of hierarchy.'"""

    def build_and_evaluate():
        leaf = Design("level00")
        leaf.add("adder", ADDER, params={"bitwidth": 8})
        current = leaf
        for level in range(1, 30):
            parent = Design(f"level{level:02d}")
            parent.add_subdesign(f"sub{level:02d}", current)
            current = parent
        current.scope.set("VDD", 1.5)
        current.scope.set("f", 2e6)
        return evaluate_power(current)

    report = benchmark(build_and_evaluate)
    print(f"\n30-level hierarchy evaluated: {report.power * 1e6:.3f} uW, "
          "VDD inherited from the top")
    # exactly one leaf, 30 levels down
    assert len(list(report.leaves())) == 1


def test_incremental_recalc_beats_full(benchmark):
    """Editing one cell must not recompute the whole sheet."""
    sheet = Sheet("wide")
    for index in range(500):
        sheet.set(f"c{index:03d}", float(index))
        sheet.set(f"d{index:03d}", f"c{index:03d} * 2 + 1")
    sheet.recalculate()

    def edit_one():
        sheet.set("c250", 999.0)
        return sheet["d250"]

    value = benchmark(edit_one)
    assert value == pytest.approx(999.0 * 2 + 1)

    # measure work directly: dirty-set size after a single edit
    sheet.recalculate()
    sheet.set("c100", 5.0)
    assert len(sheet._dirty) == 2  # the cell and its one dependent
    print("\nsingle edit dirties 2 of 1000 cells — cone-of-influence "
          "recalculation")


def test_design_sheet_bridge_incremental(benchmark):
    design = big_design(60)
    bridge = DesignSheet(design)
    _ = bridge.total_power  # settle

    counter = {"n": 0}
    design_rows = 60

    def edit_and_read():
        counter["n"] += 1
        bridge.set_parameter(
            f"row{counter['n'] % design_rows:03d}.bitwidth",
            8 + counter["n"] % 24,
        )
        return bridge.total_power

    total = benchmark(edit_and_read)
    assert total > 0
    print(f"\n60-row bridge: one parameter edit + total refresh per round")
