"""E4 — Figure 5: the InfoPad system power breakdown.

Regenerates the system spreadsheet: seven subsystem rows (custom
hardware, radio, LCDs, microprocessor, support electronics, voltage
converters, other IO), global supplies VDD1/VDD2 on the top page, the
converter row computed from every other row (EQ 19), and hyperlinked
sub-designs down to the luminance chip.

Absolute watts are reconstructed (DESIGN.md/EXPERIMENTS.md); the shape
asserted is the paper's system lesson: the custom low-power chipset is
a vanishing fraction of the budget, display/processor/radio dominate,
and converter loss is a material line item.
"""

import pytest

from conftest import banner

from repro.core.estimator import consumers_for_fraction, evaluate_power, top_consumers
from repro.core.report import render_coverage, render_power
from repro.designs.infopad import CONVERTER_EFFICIENCY, build_infopad
from repro.models.converter import converter_dissipation


def test_fig5_system_breakdown(benchmark):
    system = build_infopad()
    report = benchmark(evaluate_power, system)

    banner(
        "E4 / Figure 5 — InfoPad system summary",
        "7 subsystem rows, VDD1/VDD2 globals, converters from EQ 19, "
        "custom chipset a tiny share",
    )
    print(render_power(report, max_depth=1))
    print()
    print(render_coverage(report, limit=8))

    # the Figure 5 row set
    assert [child.name for child in report.children] == [
        "custom_hardware", "radio_subsystem", "display_lcds",
        "microprocessor_subsystem", "support_electronics",
        "other_io_devices", "voltage_converters",
    ]
    # converter row = EQ 19 of everything else
    load = report.power - report["voltage_converters"].power
    assert report["voltage_converters"].power == pytest.approx(
        converter_dissipation(load, CONVERTER_EFFICIENCY)
    )
    # the paper's lesson, quantified
    assert report["custom_hardware"].power / report.power < 0.01
    dominant = {path for path, _w in top_consumers(report, 3)}
    assert dominant <= {
        "infopad/display_lcds",
        "infopad/microprocessor_subsystem",
        "infopad/radio_subsystem",
        "infopad/support_electronics",
        "infopad/voltage_converters",
    }
    # a handful of leaves cover 80% — the point of diminishing returns
    assert len(consumers_for_fraction(report, 0.8)) <= 6


def test_fig5_top_page_parameter_flow(benchmark):
    """'All subcircuit parameters are given ... so the user can change
    any parameter from the top page.'"""
    system = build_infopad()

    def explore():
        nominal = evaluate_power(system)["custom_hardware"].power
        scaled = evaluate_power(system, overrides={"VDD2": 1.1})[
            "custom_hardware"
        ].power
        return nominal, scaled

    nominal, scaled = benchmark(explore)
    print(
        f"\ncustom chipset: {nominal * 1e6:.1f} uW at 1.5 V -> "
        f"{scaled * 1e6:.1f} uW at 1.1 V (set on the top page, applied "
        "three hierarchy levels down)"
    )
    assert scaled == pytest.approx(nominal * (1.1 / 1.5) ** 2, rel=1e-6)
