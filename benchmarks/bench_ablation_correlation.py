"""Ablation — neglecting vs modeling signal correlation.

Figure 2's caption note: "signal correlations are neglected, yielding a
conservatively high power estimate."  This ablation quantifies that
conservatism two ways:

* model level — the library's correlated coefficient sets vs the
  uncorrelated defaults, across cells;
* measurement level — the gate simulator under IID vs Gauss-Markov
  (rho = 0.95) stimulus on the same netlists, confirming the direction
  and rough magnitude the coefficient pairs encode.
"""

import pytest

from conftest import banner

from repro.models.computation import cla_adder, multiplier, ripple_adder
from repro.sim.activity import operand_vectors
from repro.sim.gatesim import simulate
from repro.sim.netlists import array_multiplier_netlist, ripple_adder_netlist

ENV = {"VDD": 1.5, "f": 2e6}


def test_correlation_coefficient_sets(benchmark):
    cells = {
        "ripple_adder": (
            ripple_adder(correlation="uncorrelated"),
            ripple_adder(correlation="correlated"),
            dict(ENV, bitwidth=16),
        ),
        "cla_adder": (
            cla_adder(correlation="uncorrelated"),
            cla_adder(correlation="correlated"),
            dict(ENV, bitwidth=16),
        ),
        "multiplier": (
            multiplier(correlation="uncorrelated"),
            multiplier(correlation="correlated"),
            dict(ENV, bitwidthA=16, bitwidthB=16),
        ),
    }

    def evaluate():
        rows = []
        for name, (plain, correlated, env) in cells.items():
            rows.append((name, plain.power(env), correlated.power(env)))
        return rows

    rows = benchmark(evaluate)

    banner(
        "Ablation — correlation: model coefficient sets",
        "'signal correlations are neglected, yielding a conservatively "
        "high power estimate'",
    )
    print(f"{'cell':>14} {'uncorrelated':>13} {'correlated':>11} {'saving':>8}")
    for name, plain, correlated in rows:
        print(
            f"{name:>14} {plain * 1e6:>11.1f}uW {correlated * 1e6:>9.1f}uW "
            f"{100 * (1 - correlated / plain):>6.0f}%"
        )
        assert correlated < plain
        assert correlated > 0.3 * plain  # same order, not a free lunch


def test_correlation_measured_at_gate_level(benchmark):
    adder = ripple_adder_netlist(16)
    mult = array_multiplier_netlist(4, 4)

    def measure():
        rows = []
        for name, netlist, bits in (("adder16", adder, 16), ("mult4x4", mult, 4)):
            plain = simulate(
                netlist, operand_vectors(250, bits, 0.0, seed=31),
                glitch_factor=0.15,
            ).capacitance_per_cycle
            correlated = simulate(
                netlist, operand_vectors(250, bits, 0.95, seed=31),
                glitch_factor=0.15,
            ).capacitance_per_cycle
            rows.append((name, plain, correlated))
        return rows

    rows = benchmark(measure)
    print(f"\n{'netlist':>9} {'IID':>9} {'rho=0.95':>9} {'ratio':>7}")
    for name, plain, correlated in rows:
        print(
            f"{name:>9} {plain * 1e12:>7.2f}pF {correlated * 1e12:>7.2f}pF "
            f"{correlated / plain:>6.2f}x"
        )
        # correlated data switches less capacitance — the estimate built
        # on uncorrelated coefficients is conservative, as the paper says
        assert correlated < plain
