"""L3 — multi-worker scale-out: throughput, correctness under load.

The paper's server is one process on one machine; the pre-fork front
(``serve --workers N``) is how the reproduction scales past the GIL
without giving up the serial-equivalence the loadgen oracle certifies.
This bench runs the identical seeded HTTP workload against a 1-worker
and a 4-worker front and measures the scale-out:

* on a machine with >= 4 CPUs (CI runners) the 4-worker front must be
  >= 2.5x the single-worker throughput — the gate that keeps the
  sharded forwarding path from quietly eating the win;
* on smaller machines the gate relaxes to a sanity bound (the front
  must not *collapse* under process overhead), and the CPU count is
  recorded in the artifact so the trajectory reader can tell which
  bound applied;
* both runs must finish with zero 5xx and clean worker exits.

Writes ``bench_multiworker.json`` (flat facts dict) for CI upload and
the benchmark trajectory.
"""

import json
import os
import pathlib

from conftest import banner

from repro.loadgen import HttpTarget, generate_workload, run_script
from repro.web.prefork import MultiWorkerFront

SEED = 1996
USERS = 8
OPS = 480
THREADS = 8

#: the CI gate; override per-runner without a code change
MIN_SPEEDUP = float(os.environ.get("POWERPLAY_BENCH_MIN_SPEEDUP", "2.5"))
#: below 4 CPUs extra workers cannot pay for their IPC; only demand
#: that the front does not collapse
MIN_SPEEDUP_SMALL = 0.3

RESULTS = {}


def _soak(tmp_path, workers):
    script = generate_workload(SEED + 9, users=USERS, ops=OPS)
    front = MultiWorkerFront(
        tmp_path / f"w{workers}", workers=workers, backend="file"
    )
    with front:
        result = run_script(
            script, HttpTarget(front.base_url), threads=THREADS
        )
    codes = front.exit_codes()
    assert codes == {index: 0 for index in range(workers)}, codes
    assert len(result.results) == len(script)
    assert not result.server_errors, (
        f"{len(result.server_errors)} 5xx/errors, first: "
        f"{[(r.index, r.kind, r.status, r.error) for r in result.server_errors[:3]]}"
    )
    return result


def test_bench_single_worker_baseline(tmp_path):
    banner(
        "L3a — single-worker HTTP baseline",
        "one process, one GIL: the throughput the front must beat",
    )
    result = _soak(tmp_path, workers=1)
    print(
        f"{len(result.results)} ops over HTTP in "
        f"{result.wall_seconds:.2f} s -> {result.throughput:.0f} ops/s "
        f"({os.cpu_count()} CPU(s))"
    )
    RESULTS["cpu_count"] = os.cpu_count() or 1
    RESULTS["ops"] = OPS
    RESULTS["single_worker_throughput_ops"] = result.throughput
    RESULTS["single_worker_wall_seconds"] = result.wall_seconds


def test_bench_four_worker_scaleout(tmp_path):
    banner(
        "L3b — 4-worker scale-out",
        ">= 2.5x single-worker throughput on a >= 4-CPU machine",
    )
    assert "single_worker_throughput_ops" in RESULTS, "baseline did not run"
    result = _soak(tmp_path, workers=4)
    baseline = RESULTS["single_worker_throughput_ops"]
    speedup = result.throughput / baseline if baseline > 0 else 0.0
    cpus = RESULTS["cpu_count"]
    gate = MIN_SPEEDUP if cpus >= 4 else MIN_SPEEDUP_SMALL
    print(
        f"{len(result.results)} ops over HTTP in "
        f"{result.wall_seconds:.2f} s -> {result.throughput:.0f} ops/s"
    )
    print(
        f"speedup vs single worker: {speedup:.2f}x "
        f"(gate {gate:g}x on {cpus} CPU(s))"
    )
    RESULTS["four_worker_throughput_ops"] = result.throughput
    RESULTS["four_worker_wall_seconds"] = result.wall_seconds
    RESULTS["speedup_4_workers"] = speedup
    RESULTS["speedup_gate"] = gate
    RESULTS["speedup_gate_full"] = cpus >= 4
    assert speedup >= gate, (
        f"4-worker front only {speedup:.2f}x the single-worker "
        f"throughput (need >= {gate:g}x on {cpus} CPU(s))"
    )


def test_write_artifact():
    """Persist the facts the earlier tests measured (CI artifact)."""
    required = (
        "cpu_count",
        "single_worker_throughput_ops",
        "four_worker_throughput_ops",
        "speedup_4_workers",
    )
    missing = [key for key in required if key not in RESULTS]
    assert not missing, f"earlier bench tests did not run: {missing}"
    artifact = pathlib.Path(__file__).parent / "bench_multiworker.json"
    artifact.write_text(json.dumps(RESULTS, indent=1, sort_keys=True))
    banner(
        "Multi-worker front — bench_multiworker.json artifact",
        "one flat facts dict for CI upload and the benchmark trajectory",
    )
    print(artifact.read_text())
