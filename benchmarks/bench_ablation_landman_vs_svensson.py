"""Ablation — Landman black-box vs Svensson analytical modeling.

The paper presents both routes to a capacitance model: Landman's
empirical coefficients ("accounts for glitching and does not require
complex analysis") and Svensson's per-stage analysis ("without requiring
extensive simulations").  This ablation puts both against the gate-level
measurement on the same circuit family (ripple adders) and compares
accuracy and evaluation cost.
"""

import time

import pytest

from conftest import banner

from repro.library.characterize import (
    characterize_adder,
    sweep_adder,
    within_octave,
)
from repro.models.svensson import svensson_ripple_adder

ENV = {"VDD": 1.5, "f": 1.0}
HELD_OUT_BITS = (6, 12, 24)


def test_model_accuracy_comparison(benchmark):
    def flow():
        landman_model, fit = characterize_adder(
            bit_widths=(4, 8, 16, 32), cycles=200
        )
        svensson_model = svensson_ripple_adder(16)
        measured = sweep_adder(HELD_OUT_BITS, cycles=200, seed=55)
        rows = []
        for bits, actual in measured:
            landman_c = landman_model.effective_capacitance(
                dict(ENV, bitwidth=bits)
            )
            svensson_c = svensson_model.total_capacitance(
                dict(ENV, bitwidth=bits, activity_scale=1.0)
            )
            rows.append((bits, actual, landman_c, svensson_c))
        return fit, rows

    fit, rows = benchmark(flow)

    banner(
        "Ablation — Landman (black box) vs Svensson (analytical), adders",
        "empirical fit absorbs glitching; analytical model needs no sims",
    )
    print(f"{'bits':>5} {'measured':>10} {'Landman':>10} {'Svensson':>10}")
    for bits, actual, landman_c, svensson_c in rows:
        print(
            f"{bits:>5} {actual * 1e12:>8.2f}pF {landman_c * 1e12:>8.2f}pF "
            f"{svensson_c * 1e12:>8.2f}pF"
        )

    for bits, actual, landman_c, svensson_c in rows:
        # the fitted black box stays within the octave
        assert within_octave(landman_c, actual), (bits, landman_c, actual)
        # the analytical model, built without any simulation, tracks the
        # linear shape (EQ 6) but misses wiring/clock — allow a wide band
        assert svensson_c > 0
        ratio = svensson_c / actual
        assert 0.1 < ratio < 10.0

    # both are linear in bit-width (EQ 3 / EQ 6)
    landman_at = {bits: lc for bits, _a, lc, _s in rows}
    svensson_at = {bits: sc for bits, _a, _l, sc in rows}
    assert landman_at[24] / landman_at[6] == pytest.approx(4.0, rel=0.35)
    assert svensson_at[24] / svensson_at[6] == pytest.approx(4.0, rel=1e-9)


def test_evaluation_cost_comparison(benchmark):
    """Once built, both models are spreadsheet-fast; the difference is
    the construction cost (simulation sweeps vs none)."""
    svensson_model = svensson_ripple_adder(16)

    def construct_svensson():
        return svensson_ripple_adder(16).total_capacitance(
            dict(ENV, bitwidth=16, activity_scale=1.0)
        )

    value = benchmark(construct_svensson)
    assert value > 0

    started = time.perf_counter()
    characterize_adder(bit_widths=(4, 8), cycles=60)
    landman_build = time.perf_counter() - started
    started = time.perf_counter()
    construct_svensson()
    svensson_build = time.perf_counter() - started
    print(
        f"\nconstruction cost: Landman sweep+fit {landman_build * 1e3:.0f} ms "
        f"vs Svensson analytical {svensson_build * 1e3:.2f} ms "
        f"({landman_build / max(svensson_build, 1e-9):.0f}x)"
    )
    assert landman_build > svensson_build


def test_measured_glitch_energy(benchmark):
    """The claim behind Landman's approach: it 'accounts for glitching'.

    Unit-delay event simulation measures the hazard energy the
    zero-delay pass misses — the component the empirical coefficients
    absorb and the analytical (Svensson) model cannot see.
    """
    from repro.sim.activity import operand_vectors
    from repro.sim.gatesim import glitch_energy_fraction
    from repro.sim.netlists import (
        array_multiplier_netlist,
        comparator_netlist,
        ripple_adder_netlist,
    )

    circuits = {
        "comparator8": (comparator_netlist(8), 8),
        "adder16": (ripple_adder_netlist(16, registered=False), 16),
        "multiplier5x5": (array_multiplier_netlist(5, 5, registered=False), 5),
    }

    def measure():
        return {
            name: glitch_energy_fraction(
                netlist, operand_vectors(150, bits, seed=7)
            )
            for name, (netlist, bits) in circuits.items()
        }

    fractions = benchmark(measure)
    print(f"\n{'circuit':>15} {'glitch energy':>14}")
    for name, fraction in fractions.items():
        print(f"{name:>15} {fraction:>13.1%}")
    # the published ordering: deep reconvergent arrays glitch hardest
    assert fractions["multiplier5x5"] > fractions["adder16"] > fractions["comparator8"]
    assert fractions["multiplier5x5"] > 0.3
