"""Fleet telemetry plane — overhead, convergence, and alerting gates.

Three acceptance bounds from the fleet-telemetry PR, pinned as benches:

* the always-on flight recorder + rate-limited SLO evaluation add
  **< 2%** to the loopback request path (accounted directly, the same
  method bench_observability.py uses for span overhead);
* a 5-server scrape converges in **one round** — every node reachable,
  the merged aggregate accounting for every node's counters — and the
  merge is **arrival-order independent** (byte-identical JSON under
  permuted node orders);
* a forced fault storm flips the availability SLO to ``page`` and the
  transition snapshot on disk contains the failing requests' trace ids.

Writes ``bench_fleet.json`` (flat facts dict) for CI upload and the
benchmark trajectory.
"""

import json
import pathlib
import statistics
import time
from itertools import islice, permutations

from conftest import banner

from repro import obs
from repro.obs import recorder as obs_recorder
from repro.obs.metrics import merge_states
from repro.obs.slo import SLOTracker
from repro.web.app import Application
from repro.web.server import PowerPlayServer

import pytest

#: facts accumulated across the tests; the last test writes the artifact
RESULTS = {"bench": "fleet_telemetry_plane"}


@pytest.fixture(autouse=True)
def _fresh_registry():
    obs.get_registry().reset()
    yield
    obs.get_registry().reset()


def _median_seconds(fn, repeats: int = 15) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


class _FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_telemetry_overhead_under_two_percent(tmp_path):
    """Recorder + SLO accounting must cost < 2% of a loopback request.

    Accounted directly (the bench_observability.py method): the
    per-request telemetry work is one rate-limited SLO evaluation
    check, one ``consume_root`` (empty stash), and one ring append —
    measured in a tight loop.  The baseline it rides on is the
    cheapest *loopback request* that exists — ``GET /api/ping`` over
    localhost HTTP with telemetry stripped; any real deployment pays
    more wire time.  The raw in-process ``handle()`` medians for both
    modes are printed alongside for context (diffing two noisy
    end-to-end runs cannot resolve 2%).
    """
    from repro.web.client import Browser

    app_off = Application(tmp_path / "off", server_name="bench-off",
                          telemetry=False)
    app_on = Application(tmp_path / "on", server_name="bench-on")
    assert app_off.recorder is None and app_off.slo_tracker is None
    assert app_on.recorder is not None and app_on.slo_tracker is not None

    batch = 200

    def handle_off_batch():
        for _ in range(batch):
            app_off.handle("GET", "/api/ping")

    def handle_on_batch():
        for _ in range(batch):
            app_on.handle("GET", "/api/ping")

    handle_off_s = _median_seconds(handle_off_batch, repeats=9) / batch
    handle_on_s = _median_seconds(handle_on_batch, repeats=9) / batch

    with PowerPlayServer(
        tmp_path / "wire", application=app_off
    ) as server:
        browser = Browser(server.base_url)
        fetch_s = _median_seconds(
            lambda: browser.get("/api/ping"), repeats=15
        )

    calls = 20_000
    recorder = app_on.recorder

    def telemetry_path():
        for _ in range(calls):
            app_on._maybe_evaluate_slos()  # rate-limited fast path
            obs_recorder.consume_root()
            recorder.record(
                route="/api/ping", method="GET", status=200,
                duration_ms=0.4, request_id="req-bench",
            )

    per_request = _median_seconds(telemetry_path, repeats=7) / calls
    overhead = per_request / fetch_s

    banner(
        "Fleet telemetry — recorder + SLO overhead on the request path",
        "acceptance bound: always-on telemetry < 2% of a loopback request",
    )
    print(f"telemetry work: {per_request * 1e6:.2f} us per request; "
          f"loopback /api/ping fetch median {fetch_s * 1e3:.3f} ms "
          f"(in-process handle {handle_off_s * 1e3:.3f} ms without / "
          f"{handle_on_s * 1e3:.3f} ms with telemetry); "
          f"overhead {overhead * 100:.2f}%")
    RESULTS["telemetry_per_request_s"] = per_request
    RESULTS["loopback_fetch_s"] = fetch_s
    RESULTS["handle_off_s"] = handle_off_s
    RESULTS["handle_on_s"] = handle_on_s
    RESULTS["telemetry_overhead_fraction"] = overhead
    assert overhead < 0.02


def test_five_server_scrape_converges_in_one_round(tmp_path):
    """5 live servers, one scrape: every node up, every counter merged."""
    from repro.obs.fleet import FleetScraper
    from repro.web.client import Browser

    servers = []
    try:
        for index in range(5):
            server = PowerPlayServer(
                tmp_path / f"s{index}", server_name=f"node{index}"
            )
            server.start()
            servers.append(server)
        # distinct traffic per node so the aggregate has something to sum
        for index, server in enumerate(servers):
            browser = Browser(server.base_url)
            for _ in range(index + 1):
                assert browser.get("/api/ping").status == 200

        scraper = FleetScraper(
            [(f"node{index}", server.base_url)
             for index, server in enumerate(servers)]
        )
        report = scraper.scrape()
    finally:
        for server in servers:
            server.stop()

    banner(
        "Fleet telemetry — 5-server scrape convergence",
        "one scrape round reaches every node and merges every counter",
    )
    assert report.reachable == len(report.nodes) == 5
    assert not report.skipped
    node_sum = sum(node.requests_total() for node in report.nodes)
    aggregate = report.aggregate_requests_total()
    print(f"5/5 nodes reachable in {report.duration_s * 1e3:.1f} ms; "
          f"aggregate {int(aggregate)} requests "
          f"(sum of node counters {int(node_sum)}); "
          f"fleet state {report.fleet_state!r}")
    assert aggregate == node_sum > 0
    assert report.fleet_state == "ok"
    RESULTS["scrape_nodes"] = len(report.nodes)
    RESULTS["scrape_reachable"] = report.reachable
    RESULTS["scrape_duration_s"] = report.duration_s
    RESULTS["aggregate_requests"] = aggregate

    # arrival-order independence: merging the scraped states in any
    # node order yields byte-identical aggregate JSON
    states = [node.metrics for node in report.nodes if node.ok]
    reference = json.dumps(merge_states(states), sort_keys=True)
    checked = 0
    for ordering in islice(permutations(states), 24):
        assert json.dumps(
            merge_states(list(ordering)), sort_keys=True
        ) == reference
        checked += 1
    print(f"merge byte-identical across {checked} node orderings")
    RESULTS["merge_orderings_checked"] = checked
    RESULTS["merge_deterministic"] = True


def test_fault_storm_pages_availability_slo(tmp_path):
    """A 5xx storm must page — and leave the evidence on disk.

    The availability SLO is driven by an injected clock (windows
    advance deterministically, no sleeping), the storm by breaking one
    route handler.  The gate: state reaches ``page`` and the transition
    snapshot contains the failing requests' trace ids.
    """
    from repro.obs.recorder import load_snapshots

    with obs.overridden(enabled=True, sink=obs.NullSink()):
        app = Application(tmp_path / "storm", server_name="storm")
        clock = _FakeClock()
        app.slo_tracker = SLOTracker(clock=clock)

        # healthy baseline evaluation at t0
        assert app.handle("GET", "/api/ping").status == 200
        statuses = app._maybe_evaluate_slos(force=True)
        assert statuses is not None
        availability = next(
            status for status in statuses
            if status.slo.name == "availability"
        )
        assert availability.state == "ok"

        # break /menu: every hit is now an internal error
        def _broken(data):
            raise RuntimeError("injected fault storm")

        app._menu = _broken
        for _ in range(50):
            assert app.handle("GET", "/menu").status == 500

        clock.advance(60)
        app._maybe_evaluate_slos(force=True)
        clock.advance(60)
        statuses = app._maybe_evaluate_slos(force=True) or []
        states = app.slo_tracker.states()

        failing_trace_ids = {
            record.trace_id
            for record in app.recorder.records()
            if record.status == 500 and record.trace_id
        }

    banner(
        "Fleet telemetry — fault storm pages the availability SLO",
        "the transition snapshot must contain the failing trace ids",
    )
    assert states["availability"] == "page"
    availability = next(
        status for status in statuses
        if status.slo.name == "availability"
    )
    print(f"availability state {availability.state!r}; burn rates "
          + ", ".join(f"{window}={rate:.0f}"
                      for window, rate in sorted(
                          availability.burn_rates.items())))
    assert failing_trace_ids, "tracing was on; 5xx records must carry ids"

    snapshots = load_snapshots(tmp_path / "storm" / "flight")
    page_snapshots = [
        snap for snap in snapshots if snap.trigger == "slo_page"
    ]
    assert page_snapshots, "the -> page transition must snapshot"
    snapshot_trace_ids = {
        record.get("trace_id")
        for snap in page_snapshots
        for record in snap.records
    }
    overlap = failing_trace_ids & snapshot_trace_ids
    print(f"{len(snapshots)} snapshots on disk "
          f"({len(page_snapshots)} from the page transition); "
          f"{len(overlap)}/{len(failing_trace_ids)} failing trace ids "
          "present in the transition snapshot")
    assert overlap
    assert page_snapshots[-1].slo is not None
    assert page_snapshots[-1].slo.get("state") == "page"
    RESULTS["storm_state"] = states["availability"]
    RESULTS["storm_page_snapshots"] = len(page_snapshots)
    RESULTS["storm_trace_ids_in_snapshot"] = bool(overlap)


def test_write_artifact():
    """Persist the facts the earlier tests measured (CI artifact)."""
    required = (
        "telemetry_overhead_fraction",
        "scrape_duration_s",
        "merge_deterministic",
        "storm_state",
    )
    missing = [key for key in required if key not in RESULTS]
    assert not missing, f"earlier bench tests did not run: {missing}"
    artifact = pathlib.Path(__file__).parent / "bench_fleet.json"
    artifact.write_text(json.dumps(RESULTS, indent=1, sort_keys=True))
    banner(
        "Fleet telemetry — bench_fleet.json artifact",
        "one flat facts dict for CI upload and the benchmark trajectory",
    )
    print(f"wrote {artifact.name}: "
          f"overhead {RESULTS['telemetry_overhead_fraction'] * 100:.2f}%, "
          f"scrape {RESULTS['scrape_duration_s'] * 1e3:.1f} ms, "
          f"storm -> {RESULTS['storm_state']!r}")
