"""E2 — Figures 1 vs 3: the alternate decompression implementation.

The paper's headline result: reorganizing the LUT to yield four words
per access (one mux + register at the full 2 MHz; memories at a fraction
of the rate) gives "~150 uW, or 1/5 that of the original design".  The
fabricated chip measured 100 uW.

This bench runs the *whole* pipeline: synthetic video through both
functional chip simulators, designs built from the simulated access
counts, hierarchical estimation, comparison.
"""

import pytest

from conftest import banner

from repro.core.estimator import compare, evaluate_power
from repro.core.report import render_comparison, render_power
from repro.designs.luminance import (
    build_figure1_design,
    build_figure3_design,
    build_luminance_from_chip,
)
from repro.sim.traces import VideoConfig, VideoSource
from repro.sim.vq import Codebook, LuminanceChip

#: The paper's published numbers for this experiment.
PAPER_FIG3_WATTS = 150e-6
PAPER_RATIO = 1 / 5
MEASURED_CHIP_WATTS = 100e-6


def test_fig1_vs_fig3_estimate(benchmark):
    fig1 = build_figure1_design()
    fig3 = build_figure3_design()
    results = benchmark(compare, [fig1, fig3])

    banner(
        "E2 / Figures 1 vs 3 — alternate implementation",
        "impl 2 ~150 uW = 1/5 of impl 1; measured chip 100 uW",
    )
    print(render_comparison(results))
    print()
    print(render_power(evaluate_power(fig3)))

    watts1 = dict(results)["luminance_fig1"]
    watts3 = dict(results)["luminance_fig3"]
    # absolute band: within a factor ~1.5 of the paper's ~150 uW
    assert watts3 == pytest.approx(PAPER_FIG3_WATTS, rel=0.5)
    # ratio band: 1/5, loosely
    assert watts3 / watts1 == pytest.approx(PAPER_RATIO, rel=0.5)
    # and the octave claim vs the measured silicon
    assert 0.5 <= watts3 / MEASURED_CHIP_WATTS <= 2.0


def test_fig3_full_pipeline_from_video(benchmark):
    """Video -> chip simulation -> measured access rates -> estimate."""

    def pipeline():
        source = VideoSource(VideoConfig(width=64, height=32, seed=21))
        chip = LuminanceChip(
            Codebook.uniform(), words_per_access=4, width=64, height=32
        )
        chip.run(source.frames(2))
        design = build_luminance_from_chip(chip)
        return evaluate_power(design), chip

    report, chip = benchmark(pipeline)
    rates = chip.access_rates()
    print(
        f"\nsimulated rates: LUT f/{chip.pixel_rate / rates['lut']:.0f}, "
        f"read f/{chip.pixel_rate / rates['read_bank']:.0f}, "
        f"write f/{chip.pixel_rate / rates['write_bank']:.0f}"
    )
    print(render_power(report))
    assert rates["lut"] == pytest.approx(chip.pixel_rate / 4)
    assert report.power > 0
