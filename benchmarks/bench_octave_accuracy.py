"""E7 — the accuracy claim: "within an octave of the actual value".

"At this level of abstraction, accuracy should be within an octave of
the actual value.  This enables power budgeting at an early stage..."

The bench characterizes library cells from gate-level sweeps, then
checks the fitted models against *held-out* sizes and stimulus seeds —
estimate vs measurement must stay within a factor of two everywhere.
Also validated: the luminance estimate vs the paper's measured silicon
(150 uW estimated vs 100 uW measured is itself an octave example).
"""

import pytest

from conftest import banner

from repro.library.characterize import (
    characterize_adder,
    characterize_multiplier,
    sweep_adder,
    sweep_multiplier,
    within_octave,
)


def test_octave_adder_held_out(benchmark):
    def flow():
        model, fit = characterize_adder(bit_widths=(4, 8, 16, 32), cycles=200)
        held_out = sweep_adder((6, 12, 24), cycles=200, seed=77)
        rows = []
        for bits, measured in held_out:
            predicted = model.effective_capacitance(
                {"bitwidth": bits, "VDD": 1.5, "f": 1.0}
            )
            rows.append((bits, measured, predicted))
        return fit, rows

    fit, rows = benchmark(flow)

    banner(
        "E7 — octave accuracy, ripple adder (EQ 3 fit, held-out sizes)",
        "'accuracy should be within an octave of the actual value'",
    )
    print(f"fit R^2 = {fit.r_squared:.5f}")
    print(f"{'bits':>5} {'measured':>12} {'model':>12} {'ratio':>7}")
    for bits, measured, predicted in rows:
        print(
            f"{bits:>5} {measured * 1e12:>10.2f}pF {predicted * 1e12:>10.2f}pF "
            f"{predicted / measured:>6.2f}x"
        )
    for bits, measured, predicted in rows:
        assert within_octave(predicted, measured), (bits, measured, predicted)


def test_octave_multiplier_held_out(benchmark):
    def flow():
        model, fit = characterize_multiplier(
            sizes=((2, 2), (3, 3), (4, 4), (5, 5)), cycles=120
        )
        held_out = sweep_multiplier(((2, 4), (6, 6), (3, 5)), cycles=120, seed=78)
        rows = []
        for (bits_a, bits_b), measured in held_out:
            predicted = model.effective_capacitance(
                {"bitwidthA": bits_a, "bitwidthB": bits_b, "VDD": 1.5, "f": 1.0}
            )
            rows.append(((bits_a, bits_b), measured, predicted))
        return fit, rows

    fit, rows = benchmark(flow)

    print(f"\nmultiplier fit: C = {fit.coefficients['c_per_bit_pair'] * 1e15:.1f} "
          f"fF per bit pair (paper's library: 253 fF on 1.2 um), "
          f"R^2 = {fit.r_squared:.4f}")
    for size, measured, predicted in rows:
        print(f"  {size}: measured {measured * 1e12:.2f} pF, "
              f"model {predicted * 1e12:.2f} pF "
              f"({predicted / measured:.2f}x)")
        assert within_octave(predicted, measured), (size, measured, predicted)


def test_octave_luminance_vs_measured_silicon(benchmark):
    """The paper's own data point: estimated ~150 uW, measured 100 uW."""
    from repro.core.estimator import evaluate_power
    from repro.designs.luminance import build_figure3_design

    report = benchmark(evaluate_power, build_figure3_design())
    measured = 100e-6
    ratio = report.power / measured
    print(f"\nluminance impl 2: estimated {report.power * 1e6:.0f} uW vs "
          f"measured 100 uW -> {ratio:.2f}x (paper: 1.5x)")
    assert within_octave(report.power, measured)


def test_octave_memory_eq7(benchmark):
    """EQ 7 characterized from gate-level memory arrays, checked on a
    held-out organization."""
    from repro.library.characterize import characterize_memory, sweep_memory

    def flow():
        model, fit = characterize_memory(cycles=120)
        held_out = sweep_memory(sizes=((16, 3), (32, 3)), cycles=120, seed=91)
        rows = []
        for (words, bits), measured in held_out:
            predicted = model.effective_capacitance(
                {"words": words, "bits": bits, "VDD": 1.5, "f": 1.0}
            )
            rows.append(((words, bits), measured, predicted))
        return fit, rows

    fit, rows = benchmark(flow)
    print(f"\nEQ 7 memory fit from simulation: R^2 = {fit.r_squared:.4f}")
    for key in ("c0", "c_words", "c_bits", "c_cell"):
        print(f"  {key:8s} = {fit.coefficients[key] * 1e15:8.2f} fF")
    for size, measured, predicted in rows:
        print(f"  held-out {size}: measured {measured * 1e12:.2f} pF, "
              f"model {predicted * 1e12:.2f} pF ({predicted / measured:.2f}x)")
        assert within_octave(predicted, measured), (size, measured, predicted)
