"""Ablation — supply-voltage scaling on the luminance design.

The spreadsheet's raison d'être: "the study of the impact of parameter
variations (such as supply voltage and clock frequency)".  Sweeps VDD
on the Figure 3 design, checks the quadratic power law, and couples in
the timing model to find the minimum supply that still meets the 2 MHz
pixel rate — the power/speed trade the Berkeley methodology revolves
around.
"""

import pytest

from conftest import banner

from repro.core.estimator import evaluate_power, sweep
from repro.core.model import VoltageScaledTimingModel
from repro.designs.luminance import build_figure3_design

VOLTAGES = [1.1, 1.3, 1.5, 2.0, 2.5, 3.3, 5.0]


def test_voltage_sweep(benchmark):
    design = build_figure3_design()
    results = benchmark(sweep, design, "VDD", VOLTAGES)

    banner(
        "Ablation — VDD sweep, luminance Figure 3 design",
        "dynamic power ~ VDD^2; the spreadsheet varies it dynamically",
    )
    base = dict(results)[1.5]
    print(f"{'VDD':>5} {'power':>10} {'vs 1.5 V':>9}")
    for vdd, watts in results:
        print(f"{vdd:>4.1f}V {watts * 1e6:>8.1f}uW {watts / base:>8.2f}x")

    for vdd, watts in results:
        assert watts == pytest.approx(base * (vdd / 1.5) ** 2, rel=1e-9)


def test_minimum_supply_meeting_timing(benchmark):
    """Couple power with the voltage-scaled delay model: the lowest VDD
    whose critical path still makes the pixel clock."""
    design = build_figure3_design()
    # LUT access at 1.5 V takes ~100 ns in the characterized library;
    # the pixel period at f/4 access is ~2 us, so there is headroom.
    timing = VoltageScaledTimingModel("lut_access", delay_ref=100e-9, v_ref=1.5)
    pixel_rate = design.scope["f_pixel"]
    period = 4.0 / pixel_rate  # the LUT runs at f/4 in this architecture

    def find_minimum():
        for vdd in [round(0.8 + 0.05 * step, 2) for step in range(60)]:
            try:
                delay = timing.delay({"VDD": vdd})
            except Exception:
                continue
            if delay <= period:
                watts = evaluate_power(design, overrides={"VDD": vdd}).power
                return vdd, delay, watts
        raise AssertionError("no feasible supply found")

    vdd, delay, watts = benchmark(find_minimum)
    nominal = evaluate_power(design).power
    print(
        f"\nminimum feasible supply: {vdd:.2f} V "
        f"(access {delay * 1e9:.0f} ns <= period {period * 1e9:.0f} ns) -> "
        f"{watts * 1e6:.1f} uW, {100 * (1 - watts / nominal):.0f}% below "
        "the 1.5 V estimate"
    )
    assert vdd < 1.5
    assert watts < nominal
