"""E5 — Figure 7: model access across the network, two protocols.

Top of the figure: Silva's SMTP-hub scheme — the requester mails its
local hub, which forwards to the remote hub, which interprets the
request and mails the model back.  Bottom: PowerPlay's modification —
an HTTP GET on a model URL, "information transfer on demand".

The bench fetches the same model set both ways over the simulated
transport and reports messages / hub hops / latency per protocol, then
times a *real* HTTP fetch against a live PowerPlay server for scale.
"""

import pytest

from conftest import banner

from repro.library.cells import build_default_library
from repro.web.hub import HTTPDirect, MailHub, compare_protocols
from repro.library.catalog import Library

MODELS = ["sram", "multiplier", "register", "ripple_adder", "controller_rom"]


def test_fig7_protocol_comparison(benchmark):
    library = build_default_library()
    stats = benchmark(compare_protocols, library, MODELS)

    banner(
        "E5 / Figure 7 — SMTP-hub vs HTTP-URL model access",
        "hub route: extra hops + store-and-forward dwell; HTTP: direct GET",
    )
    print(f"{'protocol':>12} {'messages':>9} {'hub hops':>9} {'latency':>10}")
    for name, stat in stats.items():
        print(
            f"{name:>12} {stat.messages:>9} {stat.hub_hops:>9} "
            f"{stat.latency:>9.2f}s"
        )
    per_model = {
        name: stat.latency / len(MODELS) for name, stat in stats.items()
    }
    print(
        f"\nper model: smtp {per_model['smtp_hub']:.2f} s vs "
        f"http {per_model['http_direct']:.2f} s "
        f"({per_model['smtp_hub'] / per_model['http_direct']:.0f}x)"
    )

    smtp, http = stats["smtp_hub"], stats["http_direct"]
    assert http.messages == 2 * len(MODELS)
    assert smtp.messages == 4 * len(MODELS)
    assert http.hub_hops == 0
    assert smtp.hub_hops == 3 * len(MODELS)
    assert smtp.latency > 5 * http.latency


def test_fig7_payload_equivalence(benchmark):
    """Both routes deliver the same model — protocol changes nothing
    about the estimate."""
    library = build_default_library()
    local = MailHub("mit", Library("mit"))
    remote = MailHub("berkeley", library)
    local.connect(remote)
    http = HTTPDirect("berkeley", library)

    def fetch_both():
        via_mail, _stats = local.request_model("berkeley", "multiplier")
        via_http, _stats = http.request_model("multiplier")
        return via_mail, via_http

    via_mail, via_http = benchmark(fetch_both)
    env = {"bitwidthA": 16, "bitwidthB": 16, "VDD": 1.5, "f": 2e6}
    assert via_mail.models.power.power(env) == pytest.approx(
        via_http.models.power.power(env)
    )
    print("\nidentical estimates from both protocol payloads")


def test_fig7_live_http_fetch(benchmark, tmp_path):
    """The real thing: fetch a model from a live PowerPlay server."""
    from repro.web.remote import RemoteLibraryClient
    from repro.web.server import PowerPlayServer

    with PowerPlayServer(tmp_path / "state", server_name="berkeley") as server:
        def fetch():
            client = RemoteLibraryClient(server.base_url)  # fresh cache
            return client.fetch_model("sram")

        entry = benchmark(fetch)
        assert entry.origin == server.base_url
        print(f"\nlive fetch from {server.base_url}: sram model, "
              f"origin tagged, evaluates to "
              f"{entry.models.power.power({'words': 2048, 'bits': 8, 'VDD': 1.5, 'f': 122880.0}) * 1e6:.1f} uW")
