"""R1 — resolution under chaos: success rate and latency vs fault rate.

The paper's distributed-library claim only matters if a federated
lookup survives a real network: dropped connections, slow peers, 5xx,
truncated payloads.  This bench drives :class:`ModelResolver` against a
live :class:`ChaosServer` at increasing injected fault rates and
reports, per rate, the resolution success rate, wire traffic, retries,
and stale-cache serves — with a naive (retry-free, cache-free) client
alongside to show what the resilience layer buys.

Deterministic: the fault schedule is seeded and the retry sleeps are
no-ops, so the numbers are reproducible run to run.
"""

import time

import pytest

from conftest import banner

from repro.library.catalog import Library
from repro.web.faults import ChaosServer, FaultPlan
from repro.web.remote import ModelResolver, RemoteLibraryClient
from repro.web.resilience import CircuitBreaker, RetryPolicy

MODELS = ["sram", "multiplier", "register", "ripple_adder", "controller_rom"]
ROUNDS = 4
FAULT_RATES = (0.0, 0.15, 0.30, 0.50)
SEED = 1996


class _Clock:
    """Manual cache clock so every round must revalidate on the wire."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _run_lookups(resolver, clock):
    """ROUNDS passes over MODELS; returns (successes, lookups, wall_s)."""
    successes = 0
    lookups = 0
    start = time.perf_counter()
    for _round in range(ROUNDS):
        for name in MODELS:
            lookups += 1
            try:
                entry = resolver.resolve(name)
                if entry.name == name:
                    successes += 1
            except Exception:
                pass
        clock.now += 61  # expire the 60s TTL between rounds
    return successes, lookups, time.perf_counter() - start


def _resilient_client(base_url, clock):
    return RemoteLibraryClient(
        base_url,
        retry_policy=RetryPolicy(max_attempts=6, sleep=lambda s: None),
        breaker=CircuitBreaker(failure_threshold=100),
        cache_ttl=60.0,
        clock=clock,
    )


def _naive_client(base_url):
    """One attempt, no usable cache — the pre-resilience behaviour on a
    cold lookup (the bench recreates this client every round, so there
    is never a cached copy to fall back on)."""
    return RemoteLibraryClient(
        base_url,
        retry_policy=RetryPolicy(max_attempts=1),
        breaker=CircuitBreaker(failure_threshold=10 ** 6),
    )


def test_fault_tolerance_success_rate(tmp_path):
    banner(
        "R1 — federated resolution under injected faults",
        "shared libraries must stay usable over an unreliable network",
    )
    print(
        f"{'fault rate':>10} {'mode':>10} {'success':>9} {'requests':>9} "
        f"{'retries':>8} {'stale':>6} {'wall':>9}"
    )
    resilient_rates = {}
    naive_rates = {}
    for rate in FAULT_RATES:
        for mode in ("resilient", "naive"):
            plan = FaultPlan(rate=rate, seed=SEED, latency=0.002)
            with ChaosServer(tmp_path / f"{mode}_{rate}", plan) as server:
                clock = _Clock()
                if mode == "resilient":
                    # one long-lived client: retries + TTL'd cache with
                    # stale fallback carry it through the fault storm
                    client = _resilient_client(server.base_url, clock)
                    resolver = ModelResolver(Library("local"), [client])
                    successes, lookups, wall = _run_lookups(resolver, clock)
                    requests = client.requests_made
                    retries = resolver.report.retries
                    stale = resolver.report.stale_serves
                else:
                    # fresh client every round: each lookup is cold, one
                    # attempt, nothing to fall back on (pre-resilience)
                    successes = lookups = requests = retries = stale = 0
                    start = time.perf_counter()
                    for _round in range(ROUNDS):
                        client = _naive_client(server.base_url)
                        resolver = ModelResolver(Library("local"), [client])
                        for name in MODELS:
                            lookups += 1
                            try:
                                if resolver.resolve(name).name == name:
                                    successes += 1
                            except Exception:
                                pass
                        requests += client.requests_made
                        retries += resolver.report.retries
                    wall = time.perf_counter() - start
                ratio = successes / lookups
                (resilient_rates if mode == "resilient" else naive_rates)[
                    rate
                ] = ratio
                print(
                    f"{rate:>10.2f} {mode:>10} {100 * ratio:>8.1f}% "
                    f"{requests:>9} {retries:>8} {stale:>6} {wall:>8.3f}s"
                )

    # the acceptance bar: resilience holds 100% through a 30% fault rate
    assert resilient_rates[0.30] == 1.0
    assert all(ratio == 1.0 for ratio in resilient_rates.values())
    # and it is genuinely buying something: the naive client drops
    # lookups as soon as faults appear
    assert naive_rates[0.30] < 1.0
    assert naive_rates[0.50] <= naive_rates[0.30]


def test_fault_tolerance_latency(benchmark, tmp_path):
    """Timed path: 30% faults, resilient client, one full lookup sweep
    per iteration (cache expired every round, so the wire is exercised)."""
    plan = FaultPlan(rate=0.30, seed=SEED, latency=0.002)
    with ChaosServer(tmp_path / "timed", plan) as server:
        clock = _Clock()
        client = _resilient_client(server.base_url, clock)
        resolver = ModelResolver(Library("local"), [client])

        def sweep():
            for name in MODELS:
                resolver.resolve(name)
            clock.now += 61

        benchmark(sweep)
    assert resolver.report.count("remote_failed") == 0 or (
        resolver.report.stale_serves > 0
    )


def test_tripped_circuit_is_fast(benchmark):
    """An open breaker must answer in microseconds, not timeouts: that
    is the point of failing fast on a known-dead host."""
    breaker = CircuitBreaker(failure_threshold=1, cooldown=3600)
    client = RemoteLibraryClient(
        "http://127.0.0.1:1",
        timeout=0.2,
        retry_policy=RetryPolicy(max_attempts=1),
        breaker=breaker,
    )
    resolver = ModelResolver(Library("local"), [client])
    with pytest.raises(Exception):
        resolver.resolve("sram")  # trips the breaker
    assert breaker.state == "open"

    requests_before = client.requests_made

    def rejected_lookup():
        try:
            resolver.resolve("sram")
        except Exception:
            pass

    benchmark(rejected_lookup)
    assert client.requests_made == requests_before  # never touched the wire
